package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Cap() != 100 {
		t.Fatalf("Cap() = %d, want 100", s.Cap())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
	if s.First() != -1 {
		t.Fatalf("First of empty = %d, want -1", s.First())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("after Add(%d) Contains is false", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Remove(64) did not remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	// Removing an absent element is a no-op.
	s.Remove(64)
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after double remove = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(*Set){
		func(s *Set) { s.Add(-1) },
		func(s *Set) { s.Add(10) },
		func(s *Set) { s.Remove(10) },
		func(s *Set) { s.Contains(99) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn(New(10))
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).Or(New(11))
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		f := Full(n)
		if f.Count() != n {
			t.Fatalf("Full(%d).Count() = %d", n, f.Count())
		}
		for i := 0; i < n; i++ {
			if !f.Contains(i) {
				t.Fatalf("Full(%d) missing %d", n, i)
			}
		}
	}
}

func TestComplement(t *testing.T) {
	s := FromIndices(70, 0, 10, 69)
	s.Complement()
	if s.Count() != 67 {
		t.Fatalf("Count = %d, want 67", s.Count())
	}
	if s.Contains(0) || s.Contains(10) || s.Contains(69) {
		t.Fatal("complement retained original elements")
	}
	if !s.Contains(1) || !s.Contains(68) {
		t.Fatal("complement missing expected elements")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(100, 1, 2, 3, 64, 65)
	b := FromIndices(100, 3, 4, 65, 66)

	if got := a.Union(b).Elements(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 64, 65, 66}) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b).Elements(); !reflect.DeepEqual(got, []int{3, 65}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Difference(b).Elements(); !reflect.DeepEqual(got, []int{1, 2, 64}) {
		t.Fatalf("Difference = %v", got)
	}
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	if a.Intersects(FromIndices(100, 99)) {
		t.Fatal("Intersects disjoint = true")
	}
	if !FromIndices(100, 3, 65).SubsetOf(a) {
		t.Fatal("SubsetOf = false, want true")
	}
	if a.SubsetOf(b) {
		t.Fatal("SubsetOf = true, want false")
	}
}

func TestXor(t *testing.T) {
	a := FromIndices(10, 1, 2, 3)
	b := FromIndices(10, 3, 4)
	a.Xor(b)
	if got := a.Elements(); !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Fatalf("Xor = %v", got)
	}
}

func TestFirstNextAfter(t *testing.T) {
	s := FromIndices(200, 5, 63, 64, 150)
	if s.First() != 5 {
		t.Fatalf("First = %d", s.First())
	}
	want := []int{5, 63, 64, 150}
	var got []int
	for i := s.First(); i != -1; i = s.NextAfter(i) {
		got = append(got, i)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("iteration = %v, want %v", got, want)
	}
	if s.NextAfter(150) != -1 {
		t.Fatalf("NextAfter(last) = %d, want -1", s.NextAfter(150))
	}
	if s.NextAfter(-5) != 5 {
		t.Fatalf("NextAfter(-5) = %d, want 5", s.NextAfter(-5))
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(100, 1, 2, 3, 4)
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Fatalf("seen = %v", seen)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(64, 1, 2)
	b := a.Clone()
	b.Add(3)
	if a.Contains(3) {
		t.Fatal("mutating clone changed original")
	}
	c := New(64)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom result differs")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(10, 1, 5).String(); got != "{1 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

// refSet is a map-based reference implementation for property testing.
type refSet map[int]bool

func randomPair(r *rand.Rand, n int) (*Set, refSet) {
	s := New(n)
	ref := refSet{}
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

func TestQuickAgainstReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, refA := randomPair(r, n)
		b, refB := randomPair(r, n)

		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.Difference(b)
		for i := 0; i < n; i++ {
			if union.Contains(i) != (refA[i] || refB[i]) {
				return false
			}
			if inter.Contains(i) != (refA[i] && refB[i]) {
				return false
			}
			if diff.Contains(i) != (refA[i] && !refB[i]) {
				return false
			}
		}
		if inter.Count() != a.IntersectionCount(b) {
			return false
		}
		// De Morgan: complement(a ∪ b) == complement(a) ∩ complement(b).
		ca, cb, cu := a.Clone(), b.Clone(), union.Clone()
		ca.Complement()
		cb.Complement()
		cu.Complement()
		ca.And(cb)
		return ca.Equal(cu)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetTransitivity(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		a, _ := randomPair(r, n)
		b := a.Union(func() *Set { s, _ := randomPair(r, n); return s }())
		c := b.Union(func() *Set { s, _ := randomPair(r, n); return s }())
		return a.SubsetOf(b) && b.SubsetOf(c) && a.SubsetOf(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
