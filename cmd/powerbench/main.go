// Command powerbench runs a scenario matrix through the experiment harness:
// it expands a declarative spec (generators × sizes × algorithms × ε × power
// r × trials) into seeded jobs, shards them across workers, and writes
// streaming JSONL + CSV results plus an aggregated BENCH_<name>.json summary.
//
// The matrix comes either from a JSON spec file or from flags:
//
//	powerbench -spec sweep.json
//	powerbench -generators connected-gnp,random-tree,caterpillar \
//	           -sizes 32,64 -algorithms mvc-congest,mvc-clique-rand \
//	           -eps 0.5,0.25 -trials 3 -root-seed 1 -oracle-n 64 -out bench-out
//
// Identical specs (including the root seed) produce byte-identical JSONL and
// CSV regardless of -workers; only BENCH_<name>.json carries wall-clock
// timing.  Interrupting a run (SIGINT) flushes the completed prefix and
// exits cleanly.
//
// Observability: -trace <dir> writes one JSONL trace file per job (round
// events, phase spans, kernel solves — analyze with powertrace), and
// -cpuprofile / -memprofile / -pprof expose the standard Go profiling
// surfaces. None of these perturb results: the byte-identical contract
// holds with tracing on or off.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"powergraph/internal/harness"
	"powergraph/internal/kernel"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "powerbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list       = flag.Bool("list", false, "print the registered algorithms, generators, and engine modes, then exit")
		specPath   = flag.String("spec", "", "JSON spec file (overrides the matrix flags)")
		name       = flag.String("name", "sweep", "sweep name (labels BENCH_<name>.json)")
		generators = flag.String("generators", "connected-gnp,random-tree,caterpillar",
			"comma-separated generators ("+strings.Join(harness.GeneratorNames(), ", ")+")")
		sizes      = flag.String("sizes", "32,64", "comma-separated vertex counts")
		algorithms = flag.String("algorithms", "mvc-congest,mvc-clique-rand",
			"comma-separated algorithms ("+strings.Join(harness.AlgorithmNames(), ", ")+")")
		epsilons = flag.String("eps", "0.5", "comma-separated ε grid")
		powers   = flag.String("powers", "2", "comma-separated graph powers r")
		engines  = flag.String("engines", "",
			"comma-separated simulator engines (goroutine, batch); empty = engine default. "+
				"Listing both runs every distributed cell under each engine on identical seeds")
		trials      = flag.Int("trials", 1, "seeded repetitions per scenario cell")
		rootSeed    = flag.Int64("root-seed", 1, "root seed deriving every per-job seed")
		oracleN     = flag.Int("oracle-n", 48, "solve exactly and report ratios when n ≤ this (0 disables)")
		localSolver = flag.String("local-solver", "",
			"Phase-II leader solver ("+strings.Join(harness.LocalSolverNames(), ", ")+
				"); empty = the kernel-exact default")
		gather = flag.String("gather", "",
			"comma-separated Phase-II gather modes at power ≠ 2 ("+strings.Join(harness.GatherNames(), ", ")+
				"); empty = sparsified. Listing both runs each cell under both modes on identical "+
				"seeds — a live differential of the sparsifier")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0,
			"split each batch-engine job's round sweep across this many workers "+
				"(0 = spec value or sequential; output is byte-identical at any shard count)")
		outDir   = flag.String("out", "bench-out", "output directory")
		traceDir = flag.String("trace", "",
			"write one JSONL trace file per job (job-<index>.jsonl) into this directory; "+
				"analyze with powertrace")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an end-of-run heap profile to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) for the run's duration")
		quiet   = flag.Bool("quiet", false, "suppress per-job progress on stderr")
		strict  = flag.Bool("strict", false,
			"exit non-zero if any job fails, any solution fails its Gʳ feasibility check, or any "+
				"leader solve degrades to the kernel-fallback path (CI smoke gates)")
	)
	flag.Parse()

	if *list {
		printRegistry(os.Stdout)
		return nil
	}

	spec, err := buildSpec(*specPath, *name, *generators, *sizes, *algorithms,
		*epsilons, *powers, *engines, *localSolver, *trials, *rootSeed, *oracleN)
	if err != nil {
		return err
	}
	if *gather != "" {
		// The flag overrides the spec's gather axis outright.
		spec.Gathers = splitCSV(*gather)
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	if *shards != 0 {
		// The flag pins a single count, overriding both the spec's scalar
		// and any shardCounts axis.
		spec.Shards = *shards
		spec.ShardCounts = nil
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *pprofAddr != "" {
		go func() {
			// The sweep is the process's whole life; a pprof server failure
			// (port in use) should not kill the science.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "powerbench: pprof:", err)
			}
		}()
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	jsonlFile, err := os.Create(filepath.Join(*outDir, spec.Name+".jsonl"))
	if err != nil {
		return err
	}
	defer jsonlFile.Close()
	csvFile, err := os.Create(filepath.Join(*outDir, spec.Name+".csv"))
	if err != nil {
		return err
	}
	defer csvFile.Close()

	sinks := harness.MultiSink{harness.NewJSONLSink(jsonlFile), harness.NewCSVSink(csvFile)}
	opts := harness.RunOptions{Workers: *workers, Sinks: []harness.Sink{sinks}, TraceDir: *traceDir}
	if !*quiet {
		opts.OnProgress = func(p harness.Progress) {
			r := p.Result
			status := fmt.Sprintf("cost=%d rounds=%d", r.Cost, r.Rounds)
			if r.Error != "" {
				status = "ERROR " + r.Error
			}
			eng := ""
			if r.Engine != "" {
				eng = " eng=" + r.Engine
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s n=%d r=%d %s eps=%g%s trial=%d: %s\n",
				p.Done, p.Total, r.Generator.Key(), r.N, r.Power, r.Algorithm,
				r.Epsilon, eng, r.Trial, status)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	report, runErr := harness.Run(ctx, spec, opts)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}
	if err := sinks.Close(); err != nil {
		return err
	}

	benchPath := filepath.Join(*outDir, "BENCH_"+spec.Name+".json")
	payload, err := json.MarshalIndent(report.Summarize(), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchPath, append(payload, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "%s: %d jobs (%d failed) in %s across %d cells",
		spec.Name, len(report.Results), report.Failed,
		report.Elapsed.Round(1e6), len(report.Cells))
	if len(report.Skipped) > 0 {
		fmt.Fprintf(os.Stderr, "; %d matrix combinations skipped", len(report.Skipped))
	}
	fmt.Fprintf(os.Stderr, " -> %s\n", benchPath)
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if errors.Is(runErr, context.Canceled) {
		return fmt.Errorf("interrupted after %d jobs (partial results flushed)", len(report.Results))
	}
	if *strict {
		unverified, degraded := 0, 0
		for _, r := range report.Results {
			if r.Error == "" && !r.Verified {
				unverified++
			}
			// A budget-tripped leader solve means the sweep's quality claim
			// (exact unless reported otherwise) silently degraded to the
			// 2-approximation — exactly what a smoke gate must catch.
			if r.LeaderPath == kernel.PathKernelFallback {
				degraded++
			}
		}
		if report.Failed > 0 || unverified > 0 || degraded > 0 {
			return fmt.Errorf("strict: %d jobs failed, %d solutions infeasible, %d leader solves fell back",
				report.Failed, unverified, degraded)
		}
	}
	return nil
}

// printRegistry writes the -list output: every registry key a spec can name,
// with enough context that spec authors stop guessing.
func printRegistry(w io.Writer) {
	fmt.Fprintln(w, "algorithms:")
	for _, a := range harness.AlgorithmInfos() {
		var tags []string
		if a.NeedsEps {
			tags = append(tags, "eps-grid")
		}
		tags = append(tags, "r="+a.Powers)
		if a.Exact {
			tags = append(tags, "exact")
		}
		if a.NativeStep {
			tags = append(tags, "native-step")
		}
		fmt.Fprintf(w, "  %-17s %-12s %-4s [%s]\n", a.Name, a.Model, a.Problem, strings.Join(tags, ","))
		fmt.Fprintf(w, "  %-17s %s\n", "", a.Description)
		if a.Estimator != "" {
			fmt.Fprintf(w, "  %-17s estimator: %s\n", "", a.Estimator)
		}
		if len(a.Spans) > 0 {
			fmt.Fprintf(w, "  %-17s spans: %s\n", "", strings.Join(a.Spans, ", "))
		}
	}
	fmt.Fprintln(w, "\ngenerators:")
	for _, g := range harness.GeneratorNames() {
		fmt.Fprintf(w, "  %-21s %s\n", g, harness.GeneratorDescription(g))
	}
	fmt.Fprintln(w, "\nengine modes:")
	fmt.Fprintf(w, "  %-11s %s\n", "goroutine", "one goroutine per node, channel-rendezvous barrier (the default)")
	fmt.Fprintf(w, "  %-11s %s\n", "batch", "single-scheduler round sweeps; native stepping for all registry algorithms (fast at large n)")
	fmt.Fprintln(w, "\nListing several engine modes in a spec runs every distributed cell under each engine")
	fmt.Fprintln(w, "on identical seeds, which makes the sweep a live engine-differential test.")
	fmt.Fprintln(w, "\nlocal solvers (Phase-II leader, spec localSolver / -local-solver):")
	for _, s := range harness.LocalSolverInfos() {
		fmt.Fprintf(w, "  %-13s %s\n", s.Name, s.Description)
	}
	fmt.Fprintln(w, "\ngather modes (generalized Phase II at power != 2, spec gathers / -gather):")
	for _, g := range harness.GatherInfos() {
		fmt.Fprintf(w, "  %-13s %s\n", g.Name, g.Description)
	}
}

func buildSpec(specPath, name, generators, sizes, algorithms, epsilons, powers, engines, localSolver string,
	trials int, rootSeed int64, oracleN int) (*harness.Spec, error) {
	if specPath != "" {
		return harness.LoadSpec(specPath)
	}
	gens, err := harness.ParseGenerators(generators)
	if err != nil {
		return nil, err
	}
	ns, err := parseInts(sizes)
	if err != nil {
		return nil, fmt.Errorf("-sizes: %w", err)
	}
	rs, err := parseInts(powers)
	if err != nil {
		return nil, fmt.Errorf("-powers: %w", err)
	}
	eps, err := parseFloats(epsilons)
	if err != nil {
		return nil, fmt.Errorf("-eps: %w", err)
	}
	spec := &harness.Spec{
		Name:        name,
		RootSeed:    rootSeed,
		Trials:      trials,
		Generators:  gens,
		Sizes:       ns,
		Powers:      rs,
		Algorithms:  splitCSV(algorithms),
		Epsilons:    eps,
		EngineModes: splitCSV(engines),
		OracleN:     oracleN,
		LocalSolver: localSolver,
	}
	return spec, spec.Validate()
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitCSV(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
