// Command g2mvc runs the paper's distributed G²-minimum-vertex-cover
// algorithms on a generated or loaded graph and reports rounds, message
// bits, solution size, and (for small inputs) the approximation ratio
// against the exact optimum.
//
// Usage:
//
//	g2mvc -gen gnp -n 64 -p 0.12 -eps 0.5 -model congest
//	g2mvc -gen caterpillar -n 48 -model clique-rand -eps 0.25
//	g2mvc -file network.el -model 53
//
// Models: congest (Thm 1), weighted (Thm 7), clique-det (Cor 10),
// clique-rand (Thm 11), 53 (Cor 17).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"powergraph"
)

func main() {
	gen := flag.String("gen", "gnp", "generator: gnp|udg|path|cycle|grid|caterpillar|star")
	file := flag.String("file", "", "read graph from edge-list file instead of generating")
	n := flag.Int("n", 64, "vertex count for generators")
	p := flag.Float64("p", 0.12, "edge probability (gnp) / radius (udg)")
	eps := flag.Float64("eps", 0.5, "approximation parameter ε")
	model := flag.String("model", "congest", "congest|weighted|clique-det|clique-rand|53")
	seed := flag.Int64("seed", 1, "random seed (graph and algorithm)")
	maxW := flag.Int64("maxw", 50, "max random vertex weight (weighted model)")
	exactCap := flag.Int("exactcap", 80, "compute exact ratio when n ≤ this")
	flag.Parse()

	g, err := buildGraph(*gen, *file, *n, *p, *maxW, *model == "weighted", *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "g2mvc:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d diameter=%d weighted=%v\n",
		g.N(), g.M(), g.MaxDegree(), g.Diameter(), g.Weighted())

	opts := &powergraph.Options{Seed: *seed}
	var res *powergraph.Result
	switch *model {
	case "congest":
		res, err = powergraph.MVCCongest(g, *eps, opts)
	case "weighted":
		res, err = powergraph.MWVCCongest(g, *eps, opts)
	case "clique-det":
		res, err = powergraph.MVCCliqueDeterministic(g, *eps, opts)
	case "clique-rand":
		res, err = powergraph.MVCCliqueRandomized(g, *eps, opts)
	case "53":
		res, err = powergraph.MVCCongest53(g, opts)
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "g2mvc:", err)
		os.Exit(1)
	}

	ok, witness := powergraph.IsSquareVertexCover(g, res.Solution)
	fmt.Printf("model=%s eps=%g\n", *model, *eps)
	fmt.Printf("rounds=%d messages=%d bits=%d bandwidth=%dbit\n",
		res.Stats.Rounds, res.Stats.Messages, res.Stats.TotalBits, res.Stats.Bandwidth)
	fmt.Printf("cover: size=%d weight=%d phaseI=%d feasible=%v\n",
		res.Solution.Count(), powergraph.Cost(g.Square(), res.Solution), res.PhaseISize, ok)
	if !ok {
		fmt.Printf("UNCOVERED G²-edge: %v\n", witness)
		os.Exit(1)
	}
	if g.N() <= *exactCap {
		sq := g.Square()
		opt := powergraph.Cost(sq, powergraph.ExactVC(sq))
		fmt.Printf("exact optimum=%d ratio=%s\n",
			opt, powergraph.RatioOf(powergraph.Cost(sq, res.Solution), opt))
	}
}

func buildGraph(gen, file string, n int, p float64, maxW int64, weighted bool, seed int64) (*powergraph.Graph, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return powergraph.ReadGraph(f)
	}
	rng := rand.New(rand.NewSource(seed))
	var g *powergraph.Graph
	switch gen {
	case "gnp":
		g = powergraph.ConnectedGNP(n, p, rng)
	case "udg":
		g = powergraph.ConnectedUnitDisk(n, p, rng)
	case "path":
		g = powergraph.Path(n)
	case "cycle":
		g = powergraph.Cycle(n)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		g = powergraph.Grid(side, side)
	case "caterpillar":
		g = powergraph.Caterpillar(n/4, 3)
	case "star":
		g = powergraph.Star(n)
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	if weighted {
		g = powergraph.WithRandomWeights(g, maxW, rng)
	}
	return g, nil
}
