// Command experiments regenerates every experiment table in EXPERIMENTS.md:
// one experiment per theorem/figure of "Distributed Approximation on Power
// Graphs" (PODC 2020). Each experiment prints the paper's claim and the
// measured rows.
//
// Usage:
//
//	experiments [-run E1,E3] [-quick] [-seed 1]
//
// With no -run flag every experiment executes in order.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"

	"powergraph"
	"powergraph/internal/estimate"
	"powergraph/internal/verify"
)

type experiment struct {
	id    string
	claim string
	run   func(cfg config)
}

type config struct {
	quick bool
	seed  int64
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	seed := flag.Int64("seed", 1, "master random seed")
	flag.Parse()

	cfg := config{quick: *quick, seed: *seed}
	want := map[string]bool{}
	for _, id := range strings.Split(*runFlag, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s\n", e.id, e.claim)
		e.run(cfg)
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -run; known ids:")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %s\n", e.id)
		}
		os.Exit(2)
	}
}

var experiments = []experiment{
	{"E1", "Thm 1 — CONGEST (1+ε)-approx G²-MVC in O(n/ε) rounds", runE1},
	{"E2", "Thm 7 — CONGEST (1+ε)-approx G²-MWVC in O(n·log n/ε) rounds", runE2},
	{"E3", "Cor 10/Thm 11 — CONGESTED CLIQUE in O(εn+1/ε) det / O(log n+1/ε) rand rounds", runE3},
	{"E4", "Thm 12 — centralized 5/3-approx for G²-MVC (vs Gavril 2-approx)", runE4},
	{"E5", "Lemma 6 — all-vertices is a (1+1/⌊r/2⌋)-approx on Gʳ", runE5},
	{"E6", "Thm 20/Fig 2 — MWVC(H²) = MVC(G), tracking DISJ", runE6},
	{"E7", "Thm 22/Fig 3 — MVC(H²) = MVC(G) + 2·#gadgets, O(log k) cut", runE7},
	{"E8", "Thm 31/Fig 5 — MDS(H²) = MDS(G) + #gadgets", runE8},
	{"E9", "Thms 35/41/Figs 6-7 — MDS gap 6 vs 7 (weighted), 8 vs 9 (unweighted)", runE9},
	{"E10", "Thm 28 — randomized O(log Δ)-approx G²-MDS in polylog rounds", runE10},
	{"E11", "Lemma 29/30 — 2-hop cardinality estimator concentration", runE11},
	{"E12", "Thm 26 — (1+ε) G²-MVC on gadgeted H ⇒ (1+δ) G-MVC", runE12},
	{"E13", "Thms 44/45 — centralized reductions VC(H²)=VC(G)+2m, MDS(H²)=MDS(G)+1", runE13},
	{"E14", "Thm 19/Lemma 25 — cut traffic: distributed runs vs the O(log n)-bit protocol", runE14},
}

func table(header string, rows [][]string) {
	cols := strings.Split(header, "|")
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(strings.TrimSpace(c))
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], strings.TrimSpace(c))
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	printRow(cols)
	for _, r := range rows {
		printRow(r)
	}
}

// presetJob pins one harness job on the sparse connected G(n, 8/n) workload
// with the master seed — the exact instance the historical tables used.
// The harness rebuilds the graph from the seed per job, so several jobs with
// the same (n, seed) see the same instance.
func presetJob(idx int, algorithm string, n int, eps float64, cfg config, oracleN int, maxWeight int64) powergraph.Job {
	return powergraph.Job{
		Index:     idx,
		Generator: powergraph.GeneratorSpec{Name: "connected-gnp", MaxWeight: maxWeight},
		N:         n,
		Power:     2,
		Algorithm: algorithm,
		Epsilon:   eps,
		Seed:      cfg.seed,
		OracleN:   oracleN,
	}
}

// runPreset executes the jobs through the shared worker pool and returns
// results in job order, or prints the first failure and reports !ok.
func runPreset(jobs []powergraph.Job) ([]powergraph.JobResult, bool) {
	rep, err := powergraph.RunJobs(context.Background(), jobs, powergraph.RunOptions{})
	if err != nil {
		fmt.Println("  error:", err)
		return nil, false
	}
	for _, r := range rep.Results {
		if r.Error != "" {
			fmt.Println("  error:", r.Error)
			return nil, false
		}
	}
	return rep.Results, true
}

// ratioCell renders the oracle column: the measured ratio when the exact
// optimum was computed (n ≤ the job's OracleN), "-" otherwise.
func ratioCell(r powergraph.JobResult) string {
	if r.Optimum < 0 {
		return "-"
	}
	return fmt.Sprintf("%.4f", r.Ratio)
}

func runE1(cfg config) {
	sizes := []int{32, 64, 128, 256}
	if cfg.quick {
		sizes = []int{32, 64}
	}
	var jobs []powergraph.Job
	for _, n := range sizes {
		for _, eps := range []float64{1, 0.5, 0.25, 0.125} {
			jobs = append(jobs, presetJob(len(jobs), "mvc-congest", n, eps, cfg, 64, 0))
		}
	}
	results, ok := runPreset(jobs)
	if !ok {
		return
	}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprint(r.N), fmt.Sprintf("%.3f", r.Epsilon),
			fmt.Sprint(r.Rounds),
			fmt.Sprintf("%.1f", float64(r.Rounds)/float64(r.N)),
			fmt.Sprint(r.PhaseISize),
			ratioCell(r),
			fmt.Sprint(r.MaxRoundBits),
		})
	}
	table("n|eps|rounds|rounds/n|phaseI|ratio-vs-opt|peak-bits/round", rows)
}

func runE2(cfg config) {
	sizes := []int{32, 64, 128}
	if cfg.quick {
		sizes = []int{32, 64}
	}
	var jobs []powergraph.Job
	for _, n := range sizes {
		for _, eps := range []float64{1, 0.5, 0.25} {
			jobs = append(jobs, presetJob(len(jobs), "mwvc-congest", n, eps, cfg, 64, 50))
		}
	}
	results, ok := runPreset(jobs)
	if !ok {
		return
	}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprint(r.N), fmt.Sprintf("%.3f", r.Epsilon),
			fmt.Sprint(r.Rounds), ratioCell(r),
		})
	}
	table("n|eps|rounds|ratio-vs-opt", rows)
}

func runE3(cfg config) {
	sizes := []int{32, 64, 128, 256}
	if cfg.quick {
		sizes = []int{32, 64}
	}
	algs := []string{"mvc-congest", "mvc-clique-det", "mvc-clique-rand"}
	var jobs []powergraph.Job
	for _, n := range sizes {
		for _, alg := range algs {
			jobs = append(jobs, presetJob(len(jobs), alg, n, 0.5, cfg, 0, 0))
		}
	}
	results, ok := runPreset(jobs)
	if !ok {
		return
	}
	var rows [][]string
	for i := 0; i < len(results); i += len(algs) {
		n := results[i].N
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(results[i].Rounds),
			fmt.Sprint(results[i+1].Rounds),
			fmt.Sprint(results[i+2].Rounds),
			fmt.Sprintf("%.2f", float64(results[i+2].Rounds)/math.Log2(float64(n))),
		})
	}
	table("n|CONGEST-rounds|clique-det|clique-rand|rand/log2(n)", rows)
}

func runE4(cfg config) {
	trials := 20
	if cfg.quick {
		trials = 6
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	worst53, worstGav, sum53, sumGav := 0.0, 0.0, 0.0, 0.0
	count := 0
	for i := 0; i < trials; i++ {
		g := powergraph.ConnectedGNP(16+rng.Intn(10), 0.15, rng)
		sq := g.Square()
		opt := powergraph.Cost(sq, powergraph.ExactVC(sq))
		if opt == 0 {
			continue
		}
		r53 := powergraph.RatioOf(powergraph.Cost(sq, powergraph.FiveThirdsSquareMVC(g).Cover), opt).Value
		rGav := powergraph.RatioOf(powergraph.Cost(sq, powergraph.Gavril2Approx(sq)), opt).Value
		worst53 = math.Max(worst53, r53)
		worstGav = math.Max(worstGav, rGav)
		sum53 += r53
		sumGav += rGav
		count++
	}
	table("algorithm|mean-ratio|worst-ratio|guarantee", [][]string{
		{"5/3 (Alg 2)", fmt.Sprintf("%.4f", sum53/float64(count)), fmt.Sprintf("%.4f", worst53), "1.6667"},
		{"Gavril", fmt.Sprintf("%.4f", sumGav/float64(count)), fmt.Sprintf("%.4f", worstGav), "2.0000"},
	})
}

func runE5(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	g := powergraph.ConnectedGNP(20, 0.12, rng)
	var rows [][]string
	for _, r := range []int{2, 3, 4, 5, 6} {
		gr := g.Power(r)
		opt := powergraph.Cost(gr, powergraph.ExactVC(gr))
		ratio := powergraph.RatioOf(int64(g.N()), opt).Value
		rows = append(rows, []string{
			fmt.Sprint(r),
			fmt.Sprintf("%.4f", ratio),
			fmt.Sprintf("%.4f", powergraph.Lemma6Bound(r)),
		})
	}
	table("r|all-vertices ratio|Lemma 6 bound", rows)
}

func runE6(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	var rows [][]string
	for trial := 0; trial < 6; trial++ {
		var x, y powergraph.DisjMatrix
		if trial%2 == 0 {
			x, y = powergraph.RandomIntersectingPair(4, rng)
		} else {
			x, y = powergraph.RandomDisjointPair(4, rng)
		}
		w, err := powergraph.BuildWeightedMVCGadget(x, y)
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		h2 := w.H.Square()
		baseOpt := powergraph.Cost(w.Base.G, powergraph.ExactVC(w.Base.G))
		gadgetOpt := powergraph.Cost(h2, powergraph.ExactVC(h2))
		rows = append(rows, []string{
			fmt.Sprint(trial),
			fmt.Sprint(!powergraph.Disj(x.Bits, y.Bits)),
			fmt.Sprint(baseOpt),
			fmt.Sprint(gadgetOpt),
			fmt.Sprint(w.Base.CoverTarget()),
			fmt.Sprint(baseOpt == gadgetOpt),
		})
	}
	table("trial|intersecting|MVC(G)|MWVC(H²)|W-target|equal", rows)
}

func runE7(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	var rows [][]string
	for trial := 0; trial < 4; trial++ {
		var x, y powergraph.DisjMatrix
		if trial%2 == 0 {
			x, y = powergraph.RandomIntersectingPair(2, rng)
		} else {
			x, y = powergraph.RandomDisjointPair(2, rng)
		}
		u, err := powergraph.BuildUnweightedMVCGadget(x, y)
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		h2 := u.H.Square()
		baseOpt := powergraph.Cost(u.Base.G, powergraph.ExactVC(u.Base.G))
		gadgetOpt := powergraph.Cost(h2, powergraph.ExactVC(h2))
		rows = append(rows, []string{
			fmt.Sprint(trial),
			fmt.Sprint(!powergraph.Disj(x.Bits, y.Bits)),
			fmt.Sprint(baseOpt),
			fmt.Sprint(gadgetOpt),
			fmt.Sprint(baseOpt + 2*int64(u.GadgetCount())),
			fmt.Sprint(u.Base.CutSize()),
		})
	}
	table("trial|intersecting|MVC(G)|MVC(H²)|G+2·gadgets|cut", rows)
}

func runE8(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	var rows [][]string
	for _, k := range []int{2, 4} {
		for trial := 0; trial < 2; trial++ {
			var x, y powergraph.DisjMatrix
			if trial%2 == 0 {
				x, y = powergraph.RandomIntersectingPair(k, rng)
			} else {
				x, y = powergraph.RandomDisjointPair(k, rng)
			}
			m, err := powergraph.BuildMDSGadget(x, y)
			if err != nil {
				fmt.Println("  error:", err)
				return
			}
			baseOpt := powergraph.Cost(m.BaseFamily.G, powergraph.ExactDS(m.BaseFamily.G))
			structural := m.StructuralOptimum()
			rows = append(rows, []string{
				fmt.Sprint(k),
				fmt.Sprint(!powergraph.Disj(x.Bits, y.Bits)),
				fmt.Sprint(m.H.N()),
				fmt.Sprint(m.GadgetCount()),
				fmt.Sprint(baseOpt),
				fmt.Sprint(structural),
				fmt.Sprint(int64(structural) == baseOpt+int64(m.GadgetCount())),
			})
		}
	}
	table("k|intersecting|H-vertices|gadgets|MDS(G)|MDS(H²)|equal-offset", rows)
}

func runE9(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	f := powergraph.CubeFamily(3)
	var rows [][]string
	for _, weighted := range []bool{true, false} {
		for _, intersecting := range []bool{true, false} {
			var x, y powergraph.DisjMatrix
			if intersecting {
				x, y = powergraph.RandomIntersectingPair(3, rng)
			} else {
				x, y = powergraph.RandomDisjointPair(3, rng)
			}
			g, err := powergraph.BuildSetGadgetMDS(x, y, f, weighted, 9)
			if err != nil {
				fmt.Println("  error:", err)
				return
			}
			h2 := g.H.Square()
			opt := powergraph.Cost(h2, powergraph.ExactDS(h2))
			rows = append(rows, []string{
				fmt.Sprint(weighted),
				fmt.Sprint(intersecting),
				fmt.Sprint(g.H.N()),
				fmt.Sprint(g.CutSize()),
				fmt.Sprint(opt),
				fmt.Sprint(g.GapLow()),
			})
		}
	}
	table("weighted|intersecting|H-vertices|cut|MDS(H²)|gap-low", rows)
}

func runE10(cfg config) {
	sizes := []int{16, 32, 64, 128}
	if cfg.quick {
		sizes = []int{16, 32}
	}
	var jobs []powergraph.Job
	for _, n := range sizes {
		jobs = append(jobs, presetJob(len(jobs), "mds-congest", n, 0, cfg, 32, 0))
		jobs = append(jobs, presetJob(len(jobs), "greedy-mds", n, 0, cfg, 0, 0))
	}
	results, ok := runPreset(jobs)
	if !ok {
		return
	}
	var rows [][]string
	for i := 0; i < len(results); i += 2 {
		mds, greedy := results[i], results[i+1]
		ratioStr := "-"
		if mds.Optimum >= 0 {
			ratioStr = fmt.Sprintf("%.3f", mds.Ratio)
		}
		logn := math.Log2(float64(mds.N))
		rows = append(rows, []string{
			fmt.Sprint(mds.N),
			fmt.Sprint(mds.Rounds),
			fmt.Sprintf("%.1f", float64(mds.Rounds)/(logn*logn*logn)),
			fmt.Sprint(mds.Cost),
			fmt.Sprint(greedy.Cost),
			ratioStr,
			fmt.Sprint(mds.FallbackJoins),
		})
	}
	table("n|rounds|rounds/log³n|MDS-size|greedy-size|ratio-vs-opt|fallback", rows)
}

func runE11(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	var rows [][]string
	for _, k := range []int{5, 50, 500} {
		for _, r := range []int{8, 32, 128} {
			trials := 200
			var errSum float64
			for i := 0; i < trials; i++ {
				est := estimate.Cardinality(k, r, rng)
				errSum += math.Abs(est-float64(k)) / float64(k)
			}
			rows = append(rows, []string{
				fmt.Sprint(k), fmt.Sprint(r),
				fmt.Sprintf("%.4f", errSum/float64(trials)),
				fmt.Sprintf("%.4f", math.Sqrt(3*math.Log(20)/float64(r))),
			})
		}
	}
	table("k|r|mean-rel-error|Lemma30 eps @95%", rows)
}

func runE12(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	delta := 0.5
	var rows [][]string
	for trial := 0; trial < 4; trial++ {
		g := powergraph.ConnectedGNP(10+2*trial, 0.25, rng)
		r := powergraph.BuildDanglingPathReduction(g)
		eps := r.ReductionEpsilon(delta, verify.MatchingLowerBound(g))
		res, err := powergraph.MVCCongest(r.H, eps, &powergraph.Options{Seed: cfg.seed})
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		proj := r.ProjectCover(res.Solution)
		optG := powergraph.Cost(g, powergraph.ExactVC(g))
		rows = append(rows, []string{
			fmt.Sprint(g.N()), fmt.Sprint(g.M()), fmt.Sprintf("%.4f", eps),
			fmt.Sprint(res.Stats.Rounds),
			fmt.Sprintf("%.4f", powergraph.RatioOf(powergraph.Cost(g, proj), optG).Value),
			fmt.Sprintf("%.1f", 1+delta),
		})
	}
	table("n|m|eps-used|rounds-on-H|projected-ratio|1+delta", rows)
}

func runE13(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	okVC, okDS, trials := 0, 0, 10
	for i := 0; i < trials; i++ {
		g := powergraph.GNP(8, 0.4, rng)
		if g.M() == 0 {
			trials--
			continue
		}
		r := powergraph.BuildDanglingPathReduction(g)
		h2 := r.H.Square()
		if powergraph.Cost(h2, powergraph.ExactVC(h2)) == powergraph.Cost(g, powergraph.ExactVC(g))+2*int64(g.M()) {
			okVC++
		}
		mr, err := powergraph.BuildMergedPathReduction(g)
		if err != nil {
			continue
		}
		mh2 := mr.H.Square()
		if powergraph.Cost(mh2, powergraph.ExactDS(mh2)) == powergraph.Cost(g, powergraph.ExactDS(g))+1 {
			okDS++
		}
	}
	table("reduction|verified/trials", [][]string{
		{"Thm 44: VC(H²) = VC(G)+2m", fmt.Sprintf("%d/%d", okVC, trials)},
		{"Thm 45: MDS(H²) = MDS(G)+1", fmt.Sprintf("%d/%d", okDS, trials)},
	})
}

func runE14(cfg config) {
	rng := rand.New(rand.NewSource(cfg.seed))
	var rows [][]string
	for _, k := range []int{2, 4} {
		x, y := powergraph.RandomIntersectingPair(k, rng)
		u, err := powergraph.BuildUnweightedMVCGadget(x, y)
		if err != nil {
			fmt.Println("  error:", err)
			return
		}
		for _, eps := range []float64{1, 0.05} {
			res, err := powergraph.MVCCongest(u.H, eps, &powergraph.Options{Seed: cfg.seed, CutA: u.Alice})
			if err != nil {
				fmt.Println("  error:", err)
				return
			}
			rows = append(rows, []string{
				fmt.Sprint(k), fmt.Sprintf("Alg1 eps=%.2f", eps),
				fmt.Sprint(u.H.N()),
				fmt.Sprint(res.Stats.CutBits),
				fmt.Sprint(res.Stats.Rounds),
			})
		}
		cover, tr := powergraph.Lemma25Cover(u.H, u.Alice)
		feasible, _ := powergraph.IsSquareVertexCover(u.H, cover)
		rows = append(rows, []string{
			fmt.Sprint(k), "Lemma 25 protocol", fmt.Sprint(u.H.N()),
			fmt.Sprint(tr.Total()), fmt.Sprintf("feasible=%v", feasible),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	table("k|protocol|H-vertices|cut-bits|rounds/notes", rows)
}
