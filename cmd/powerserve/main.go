// Command powerserve is the always-on serving layer: it holds graphs
// resident in memory and answers MVC / MWVC / MDS queries over HTTP/JSON
// while accepting streaming edge churn, maintaining every cached power graph
// Gʳ incrementally (see internal/serve).
//
// Serve mode binds the API and blocks until interrupted:
//
//	powerserve -addr :8080
//	powerserve -addr :8080 -preload graph.txt        # edge-list file as "graph"
//
// Bench mode drives the mixed-load generator against an in-process server
// and writes the sustained-QPS / latency-quantile report:
//
//	powerserve -load specs/serve-load.json -out BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"powergraph/internal/graph"
	"powergraph/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "powerserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "", "listen address for serve mode (e.g. :8080)")
		workers  = flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
		preload  = flag.String("preload", "", "comma-separated edge-list files to load at startup (id = file base name)")
		loadSpec = flag.String("load", "", "load-spec file: run the bench instead of serving")
		out      = flag.String("out", "BENCH_serve.json", "bench report path (with -load)")
	)
	flag.Parse()

	if *loadSpec != "" {
		return runBench(*loadSpec, *out)
	}
	if *addr == "" {
		return fmt.Errorf("need -addr to serve or -load to benchmark (see -help)")
	}

	srv := serve.New(serve.Options{Workers: *workers})
	if *preload != "" {
		for _, path := range strings.Split(*preload, ",") {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			g, err := graph.ReadEdgeList(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("preload %s: %w", path, err)
			}
			id := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			if _, err := srv.AddGraph(id, g); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "powerserve: loaded %s as %q (n=%d m=%d)\n", path, id, g.N(), g.M())
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "powerserve: listening on %s\n", *addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutdownCtx)
}

func runBench(specPath, outPath string) error {
	spec, err := serve.LoadLoadSpec(specPath)
	if err != nil {
		return err
	}
	rep, err := serve.RunLoad(spec)
	if err != nil {
		return err
	}
	payload, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(payload, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d requests (%.0f qps, %d solves, %d churns) in %.0fms -> %s\n",
		rep.Name, rep.Requests, rep.QPS, rep.Solves, rep.Churns, rep.DurationMs, outPath)
	return nil
}
