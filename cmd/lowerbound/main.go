// Command lowerbound builds the paper's lower-bound graph families
// (Figures 1–7) for chosen disjointness inputs, verifies their defining
// predicates with the exact solvers, and optionally emits Graphviz DOT.
//
// Usage:
//
//	lowerbound -family ckp17 -k 4 -mode intersecting
//	lowerbound -family mvc-unweighted -k 2 -mode disjoint
//	lowerbound -family set-weighted -T 3 -dot out.dot
//
// Families: ckp17 (Fig 1), mvc-weighted (Fig 2), mvc-unweighted (Fig 3),
// bcd19 (Fig 4), mds-gadget (Fig 5), set-weighted (Fig 6),
// set-unweighted (Fig 7).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"powergraph"
	"powergraph/internal/graph"
)

func main() {
	family := flag.String("family", "ckp17", "ckp17|mvc-weighted|mvc-unweighted|bcd19|mds-gadget|set-weighted|set-unweighted")
	k := flag.Int("k", 2, "row count for the Fig 1–5 families (power of two)")
	T := flag.Int("T", 3, "set count for the Fig 6–7 families")
	mode := flag.String("mode", "intersecting", "intersecting|disjoint|zero")
	seed := flag.Int64("seed", 1, "random seed for the input pair")
	dotFile := flag.String("dot", "", "write the family graph in DOT format to this file")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	dim := *k
	if *family == "set-weighted" || *family == "set-unweighted" {
		dim = *T
	}
	var x, y powergraph.DisjMatrix
	switch *mode {
	case "intersecting":
		x, y = powergraph.RandomIntersectingPair(dim, rng)
	case "disjoint":
		x, y = powergraph.RandomDisjointPair(dim, rng)
	case "zero":
		x, y = powergraph.NewDisjMatrix(dim), powergraph.NewDisjMatrix(dim)
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	fmt.Printf("inputs: k=%d DISJ=%v\n", dim, powergraph.Disj(x.Bits, y.Bits))

	var describeErr error
	var dotGraph *powergraph.Graph
	switch *family {
	case "ckp17":
		c, err := powergraph.BuildCKP17MVC(x, y)
		if err != nil {
			fail(err)
		}
		dotGraph = c.G
		opt := powergraph.Cost(c.G, powergraph.ExactVC(c.G))
		fmt.Printf("Figure 1 family: n=%d m=%d cut=%d\n", c.G.N(), c.G.M(), c.CutSize())
		fmt.Printf("MVC(G)=%d target W=%d predicate-holds=%v\n",
			opt, c.CoverTarget(), (opt == c.CoverTarget()) == !powergraph.Disj(x.Bits, y.Bits))
	case "mvc-weighted":
		w, err := powergraph.BuildWeightedMVCGadget(x, y)
		if err != nil {
			fail(err)
		}
		dotGraph = w.H
		h2 := w.H.Square()
		base := powergraph.Cost(w.Base.G, powergraph.ExactVC(w.Base.G))
		gadget := powergraph.Cost(h2, powergraph.ExactVC(h2))
		fmt.Printf("Figure 2 family: H has n=%d m=%d (%d zero-weight path vertices)\n",
			w.H.N(), w.H.M(), len(w.PathVertices))
		fmt.Printf("MVC(G)=%d MWVC(H²)=%d Lemma21-equal=%v\n", base, gadget, base == gadget)
	case "mvc-unweighted":
		u, err := powergraph.BuildUnweightedMVCGadget(x, y)
		if err != nil {
			fail(err)
		}
		dotGraph = u.H
		h2 := u.H.Square()
		base := powergraph.Cost(u.Base.G, powergraph.ExactVC(u.Base.G))
		gadget := powergraph.Cost(h2, powergraph.ExactVC(h2))
		fmt.Printf("Figure 3 family: H has n=%d m=%d (%d gadgets)\n",
			u.H.N(), u.H.M(), u.GadgetCount())
		fmt.Printf("MVC(G)=%d MVC(H²)=%d offset=%d Lemma24-equal=%v\n",
			base, gadget, 2*u.GadgetCount(), gadget == base+2*int64(u.GadgetCount()))
	case "bcd19":
		c, err := powergraph.BuildBCD19MDS(x, y)
		if err != nil {
			fail(err)
		}
		dotGraph = c.G
		opt := powergraph.Cost(c.G, powergraph.ExactDS(c.G))
		fmt.Printf("Figure 4 family: n=%d m=%d cut=%d\n", c.G.N(), c.G.M(), c.CutSize())
		fmt.Printf("MDS(G)=%d target W=%d predicate-holds=%v\n",
			opt, c.DomTarget(), (opt <= c.DomTarget()) == !powergraph.Disj(x.Bits, y.Bits))
	case "mds-gadget":
		m, err := powergraph.BuildMDSGadget(x, y)
		if err != nil {
			fail(err)
		}
		dotGraph = m.H
		base := powergraph.Cost(m.BaseFamily.G, powergraph.ExactDS(m.BaseFamily.G))
		structural := m.StructuralOptimum()
		fmt.Printf("Figure 5 family: H has n=%d m=%d (%d gadgets)\n",
			m.H.N(), m.H.M(), m.GadgetCount())
		fmt.Printf("MDS(G)=%d MDS(H²)=%d Lemma34-equal=%v\n",
			base, structural, int64(structural) == base+int64(m.GadgetCount()))
	case "set-weighted", "set-unweighted":
		weighted := *family == "set-weighted"
		f := powergraph.CubeFamily(dim)
		g, err := powergraph.BuildSetGadgetMDS(x, y, f, weighted, 9)
		if err != nil {
			fail(err)
		}
		dotGraph = g.H
		h2 := g.H.Square()
		opt := powergraph.Cost(h2, powergraph.ExactDS(h2))
		fig := "6"
		if !weighted {
			fig = "7"
		}
		fmt.Printf("Figure %s family: H has n=%d m=%d cut=%d (universe %d)\n",
			fig, g.H.N(), g.H.M(), g.CutSize(), f.L)
		fmt.Printf("MDS(H²)=%d gap-low=%d gap-aligned=%v\n",
			opt, g.GapLow(), (opt <= g.GapLow()) == !powergraph.Disj(x.Bits, y.Bits))
	default:
		describeErr = fmt.Errorf("unknown family %q", *family)
	}
	if describeErr != nil {
		fail(describeErr)
	}

	if *dotFile != "" && dotGraph != nil {
		if err := os.WriteFile(*dotFile, []byte(graph.DOT(dotGraph)), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote DOT to %s\n", *dotFile)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lowerbound:", err)
	os.Exit(1)
}
