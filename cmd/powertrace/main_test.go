package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"powergraph/internal/harness"
)

// writeTraces runs a tiny two-job sweep (one distributed, one centralized)
// with tracing enabled and returns the trace directory plus the report.
func writeTraces(t *testing.T) (string, *harness.Report) {
	t.Helper()
	dir := t.TempDir()
	jobs := []harness.Job{
		{Index: 0, Generator: harness.GeneratorSpec{Name: "connected-gnp"}, N: 20,
			Power: 2, Algorithm: "mvc-congest", Epsilon: 0.5, Seed: 7, Engine: "batch"},
		{Index: 1, Generator: harness.GeneratorSpec{Name: "path"}, N: 10,
			Power: 2, Algorithm: "gavril", Seed: 8},
	}
	rep, err := harness.RunJobs(context.Background(), jobs, harness.RunOptions{TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("job %d: %s", r.Index, r.Error)
		}
	}
	return dir, rep
}

func TestCheckAcceptsRealTraces(t *testing.T) {
	dir, rep := writeTraces(t)
	var out bytes.Buffer
	if err := run(&out, []string{"-check", dir}); err != nil {
		t.Fatalf("valid traces rejected: %v\n%s", err, out.String())
	}
	text := out.String()
	if strings.Contains(text, "VIOLATION") {
		t.Fatalf("violations on a clean run:\n%s", text)
	}
	// The distributed job's summary accounts for 100%% of its rounds.
	wantRounds := strconv.Itoa(rep.Results[0].Rounds) + " rounds"
	if !strings.Contains(text, wantRounds) {
		t.Fatalf("check summary does not report %s:\n%s", wantRounds, text)
	}
	if !strings.Contains(text, "centralized, no engine events") {
		t.Fatalf("centralized job not recognized:\n%s", text)
	}
}

func TestTimelineAccountsForEveryRound(t *testing.T) {
	dir, rep := writeTraces(t)
	var out bytes.Buffer
	if err := run(&out, []string{"-format", "csv", dir}); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs[0], timelineCSVHeader) {
		t.Fatalf("CSV header %v, want %v", recs[0], timelineCSVHeader)
	}
	// One row per (job, round): the distributed job contributes exactly its
	// counted rounds, the centralized one nothing.
	if got, want := len(recs)-1, rep.Results[0].Rounds; got != want {
		t.Fatalf("%d timeline rows for %d counted rounds", got, want)
	}
	var phased bool
	for i, rec := range recs[1:] {
		if rec[5] != strconv.Itoa(i) {
			t.Fatalf("row %d carries round %s", i, rec[5])
		}
		if rec[10] != "" {
			phased = true
		}
	}
	if !phased {
		t.Fatal("no timeline row is covered by any phase span")
	}

	out.Reset()
	if err := run(&out, []string{"-job", "0", dir}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "mvc-congest") || strings.Contains(text, "gavril") {
		t.Fatalf("-job 0 did not restrict output:\n%s", text)
	}
	if !strings.Contains(text, "leader-solve") || !strings.Contains(text, "kernel-solve: path=") {
		t.Fatalf("timeline missing leader/kernel detail:\n%s", text)
	}
}

func TestCheckRejectsBrokenTraces(t *testing.T) {
	cases := map[string]string{
		// A span that never closes.
		"unclosed": `{"type":"job","index":0,"algorithm":"x","n":4,"power":2}
{"type":"run-start","n":4,"model":"CONGEST","engine":"batch","bandwidth":8,"maxRounds":10,"seed":1}
{"type":"span-begin","name":"phase1","index":0,"round":0}
{"type":"run-end","rounds":0,"messages":0,"totalBits":0,"maxRoundBits":0,"maxRoundMessages":0}
{"type":"job-end","metrics":null}`,
		// Round events out of order.
		"rounds": `{"type":"job","index":0,"algorithm":"x","n":4,"power":2}
{"type":"run-start","n":4,"model":"CONGEST","engine":"batch","bandwidth":8,"maxRounds":10,"seed":1}
{"type":"round","round":1,"active":4,"msgs":0,"bits":0,"maxLink":0}
{"type":"round","round":0,"active":4,"msgs":0,"bits":0,"maxLink":0}
{"type":"run-end","rounds":2,"messages":0,"totalBits":0,"maxRoundBits":0,"maxRoundMessages":0}
{"type":"job-end","metrics":null}`,
		// Round sums disagreeing with the run-end totals.
		"totals": `{"type":"job","index":0,"algorithm":"x","n":4,"power":2}
{"type":"run-start","n":4,"model":"CONGEST","engine":"batch","bandwidth":8,"maxRounds":10,"seed":1}
{"type":"round","round":0,"active":4,"msgs":2,"bits":16,"maxLink":8}
{"type":"run-end","rounds":1,"messages":2,"totalBits":99,"maxRoundBits":16,"maxRoundMessages":2}
{"type":"job-end","metrics":null}`,
		// No job-end seal (crashed mid-write).
		"unsealed": `{"type":"job","index":0,"algorithm":"x","n":4,"power":2}`,
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "job-000000.jsonl")
			if err := os.WriteFile(path, []byte(content+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := run(&out, []string{"-check", dir}); err == nil {
				t.Fatalf("broken trace accepted:\n%s", out.String())
			}
			if !strings.Contains(out.String(), "VIOLATION") {
				t.Fatalf("no violation reported:\n%s", out.String())
			}
		})
	}
}
