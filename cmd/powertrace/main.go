// Command powertrace parses and validates the per-job JSONL trace files a
// harness run writes under powerbench -trace <dir>, and renders a per-round
// timeline: round number, active nodes, message/bit volume, the worst
// single-link load, and which phase spans covered the round.
//
//	powertrace trace-dir                 # text timeline for every job file
//	powertrace -format csv trace-dir     # one CSV row per (job, round)
//	powertrace -check trace-dir          # validate only; non-zero exit on any violation
//	powertrace -job 12 trace-dir         # restrict to job index 12
//
// Validation enforces the trace-completeness contract end to end: every line
// is a typed JSON record, files open with a job header and close with a
// job-end seal, round events are monotone from zero and account for every
// counted round, their sums reproduce the run-end totals exactly, and every
// span instance closes with begin ≤ end inside the run's round range. Span
// mark order within a round is unspecified (the goroutine engine interleaves
// nodes), so all span checks are order-insensitive aggregates. Centralized
// jobs never touch the simulator; their files legitimately hold only the
// job header and seal.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"powergraph/internal/obs"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "powertrace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, argv []string) error {
	fs := flag.NewFlagSet("powertrace", flag.ContinueOnError)
	var (
		check  = fs.Bool("check", false, "validate only (no timeline); non-zero exit on any violation")
		format = fs.String("format", "text", "timeline format: text or csv")
		jobIdx = fs.Int("job", -1, "restrict to this job index (-1 = all)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (want text or csv)", *format)
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: powertrace [-check] [-format text|csv] [-job N] <trace-dir-or-file>...")
	}

	var files []string
	for _, arg := range fs.Args() {
		st, err := os.Stat(arg)
		if err != nil {
			return err
		}
		if st.IsDir() {
			matches, err := filepath.Glob(filepath.Join(arg, "job-*.jsonl"))
			if err != nil {
				return err
			}
			if len(matches) == 0 {
				return fmt.Errorf("%s: no job-*.jsonl trace files", arg)
			}
			sort.Strings(matches)
			files = append(files, matches...)
		} else {
			files = append(files, arg)
		}
	}

	cw := newCSVOnce(w, *format == "csv")
	violations := 0
	for _, path := range files {
		tr, err := parseFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if *jobIdx >= 0 && tr.Job.Index != *jobIdx {
			continue
		}
		probs := tr.validate()
		if len(probs) > 0 {
			violations += len(probs)
			for _, p := range probs {
				fmt.Fprintf(w, "VIOLATION %s: %s\n", path, p)
			}
			continue
		}
		switch {
		case *check:
			fmt.Fprintf(w, "ok %s: %s\n", path, tr.oneLine())
		case *format == "csv":
			tr.renderCSV(cw)
		default:
			tr.renderText(w)
		}
	}
	cw.flush()
	if violations > 0 {
		return fmt.Errorf("%d contract violations", violations)
	}
	return nil
}

// jobHeader is the subset of the harness Job record the timeline labels use.
type jobHeader struct {
	Index     int     `json:"index"`
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Power     int     `json:"power"`
	Engine    string  `json:"engine"`
	Epsilon   float64 `json:"epsilon"`
	Seed      int64   `json:"seed"`
}

type jobEnd struct {
	Error string `json:"error"`
	Spans string `json:"spans"`
}

// trace is one parsed per-job trace file.
type trace struct {
	Path     string
	Job      jobHeader
	Info     *obs.RunInfo
	Rounds   []obs.RoundEvent
	Begins   []obs.Span
	Ends     []obs.Span
	Kernels  []obs.KernelSolveEvent
	End      *obs.RunEnd
	Seal     *jobEnd
	hasJob   bool
	lineErrs []string
}

func parseFile(path string) (*trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr := &trace{Path: path}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		var head struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &head); err != nil {
			return nil, fmt.Errorf("bad record %q: %w", sc.Text(), err)
		}
		if first && head.Type != "job" {
			tr.lineErrs = append(tr.lineErrs, "file does not open with a job header")
		}
		first = false
		var err error
		switch head.Type {
		case "job":
			tr.hasJob = true
			err = json.Unmarshal(line, &tr.Job)
		case "run-start":
			tr.Info = &obs.RunInfo{}
			err = json.Unmarshal(line, tr.Info)
		case "round":
			var ev obs.RoundEvent
			if err = json.Unmarshal(line, &ev); err == nil {
				tr.Rounds = append(tr.Rounds, ev)
			}
		case "span-begin":
			var s obs.Span
			if err = json.Unmarshal(line, &s); err == nil {
				tr.Begins = append(tr.Begins, s)
			}
		case "span-end":
			var s obs.Span
			if err = json.Unmarshal(line, &s); err == nil {
				tr.Ends = append(tr.Ends, s)
			}
		case "kernel-solve":
			var ev obs.KernelSolveEvent
			if err = json.Unmarshal(line, &ev); err == nil {
				tr.Kernels = append(tr.Kernels, ev)
			}
		case "run-end":
			tr.End = &obs.RunEnd{}
			err = json.Unmarshal(line, tr.End)
		case "job-end":
			tr.Seal = &jobEnd{}
			err = json.Unmarshal(line, tr.Seal)
		default:
			tr.lineErrs = append(tr.lineErrs, fmt.Sprintf("unknown record type %q", head.Type))
		}
		if err != nil {
			return nil, fmt.Errorf("bad %s record: %w", head.Type, err)
		}
	}
	return tr, sc.Err()
}

// spanInterval is one reconstructed span instance: the half-open round range
// [Begin, End) covered by a (name, index) key's begin/end marks.
type spanInterval struct {
	Name       string
	Index      int
	Begin, End int
}

// intervals pairs the trace's span marks per (name, index) key,
// order-insensitively: a key's interval runs from its earliest begin to its
// latest end (the engine refcounts nodes, so within a key only the extremes
// are meaningful). Keys with mismatched mark counts are reported as
// violations by validate, not returned here.
func (tr *trace) intervals() []spanInterval {
	type key struct {
		name  string
		index int
	}
	begins := map[key][]int{}
	endsAt := map[key][]int{}
	for _, s := range tr.Begins {
		k := key{s.Name, s.Index}
		begins[k] = append(begins[k], s.Round)
	}
	for _, s := range tr.Ends {
		k := key{s.Name, s.Index}
		endsAt[k] = append(endsAt[k], s.Round)
	}
	var out []spanInterval
	for k, bs := range begins {
		es := endsAt[k]
		if len(es) == 0 {
			continue
		}
		iv := spanInterval{Name: k.name, Index: k.index, Begin: bs[0], End: es[0]}
		for _, b := range bs[1:] {
			if b < iv.Begin {
				iv.Begin = b
			}
		}
		for _, e := range es[1:] {
			if e > iv.End {
				iv.End = e
			}
		}
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Begin != b.Begin {
			return a.Begin < b.Begin
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Index < b.Index
	})
	return out
}

// validate returns every trace-contract violation in the file.
func (tr *trace) validate() []string {
	probs := append([]string(nil), tr.lineErrs...)
	bad := func(format string, args ...any) { probs = append(probs, fmt.Sprintf(format, args...)) }
	if !tr.hasJob {
		bad("missing job header")
	}
	if tr.Seal == nil {
		bad("missing job-end seal")
		return probs
	}

	// Centralized baselines (and jobs that failed before the engine started)
	// never open a run; their files hold only the header and seal.
	if tr.Info == nil {
		if tr.End != nil || len(tr.Rounds) > 0 || len(tr.Begins) > 0 {
			bad("engine events without a run-start")
		}
		return probs
	}
	if tr.End == nil {
		bad("run-start without run-end")
		return probs
	}

	for i, ev := range tr.Rounds {
		if ev.Round != i {
			bad("round event %d carries round %d (not monotone-complete)", i, ev.Round)
			break
		}
		if ev.Active <= 0 || ev.Active > tr.Info.N {
			bad("round %d: %d active nodes with n=%d", i, ev.Active, tr.Info.N)
		}
		if ev.MaxLink > ev.Bits {
			bad("round %d: maxLink %d exceeds round bits %d", i, ev.MaxLink, ev.Bits)
		}
	}
	if len(tr.Rounds) != tr.End.Rounds {
		bad("%d round events for %d counted rounds", len(tr.Rounds), tr.End.Rounds)
	}
	var bits, msgs int64
	for _, ev := range tr.Rounds {
		bits += ev.Bits
		msgs += ev.Messages
	}
	if bits != tr.End.TotalBits || msgs != tr.End.Messages {
		bad("round sums bits=%d msgs=%d vs run-end bits=%d msgs=%d",
			bits, msgs, tr.End.TotalBits, tr.End.Messages)
	}

	// Span marks: per (name, index) key the begin and end counts must match
	// (no unclosed spans), and every mark must land in [0, Rounds] — ends may
	// legitimately sit at round == Rounds, the post-final-round position.
	type key struct {
		name  string
		index int
	}
	counts := map[key]int{}
	for _, s := range tr.Begins {
		counts[key{s.Name, s.Index}]++
	}
	for _, s := range tr.Ends {
		counts[key{s.Name, s.Index}]--
	}
	for k, c := range counts {
		if c != 0 {
			bad("span %s#%d: %+d unmatched marks (unclosed span)", k.name, k.index, c)
		}
	}
	for _, s := range append(append([]obs.Span(nil), tr.Begins...), tr.Ends...) {
		if s.Round < 0 || s.Round > tr.End.Rounds {
			bad("span %s#%d mark at round %d outside [0, %d]", s.Name, s.Index, s.Round, tr.End.Rounds)
		}
	}
	for _, iv := range tr.intervals() {
		if iv.End < iv.Begin {
			bad("span %s#%d ends (%d) before it begins (%d)", iv.Name, iv.Index, iv.End, iv.Begin)
		}
	}
	if tr.Seal.Error == "" && tr.End.Error != "" {
		bad("run-end error %q not reflected in job-end", tr.End.Error)
	}
	return probs
}

// oneLine is the -check summary for a valid file.
func (tr *trace) oneLine() string {
	if tr.Info == nil {
		return fmt.Sprintf("job %d %s (centralized, no engine events)", tr.Job.Index, tr.Job.Algorithm)
	}
	return fmt.Sprintf("job %d %s n=%d r=%d %s: %d rounds, %d span marks, %d kernel solves",
		tr.Job.Index, tr.Job.Algorithm, tr.Job.N, tr.Job.Power, tr.Info.Engine,
		len(tr.Rounds), len(tr.Begins)+len(tr.Ends), len(tr.Kernels))
}

// phasesAt names the spans covering round r, in interval order.
func phasesAt(ivs []spanInterval, r int) string {
	var names []string
	for _, iv := range ivs {
		covers := iv.Begin <= r && r < iv.End
		// A zero-length span (leader-solve) is attributed to the round it
		// occurred at, else it would never appear in the timeline.
		if iv.Begin == iv.End && iv.Begin == r {
			covers = true
		}
		if covers {
			names = append(names, iv.Name)
		}
	}
	return strings.Join(names, ",")
}

func (tr *trace) renderText(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", tr.oneLine())
	if tr.Info == nil {
		return
	}
	ivs := tr.intervals()
	tw := newTabWriter(w)
	fmt.Fprintln(tw, "round\tactive\tmsgs\tbits\tmaxlink\tphases")
	for _, ev := range tr.Rounds {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\n",
			ev.Round, ev.Active, ev.Messages, ev.Bits, ev.MaxLink, phasesAt(ivs, ev.Round))
	}
	tw.Flush()
	for _, k := range tr.Kernels {
		fmt.Fprintf(w, "kernel-solve: path=%s input=%dv/%de kernel=%dv/%de searchNodes=%d cost=%d optimal=%v\n",
			k.Path, k.InputN, k.InputM, k.KernelN, k.KernelM, k.SearchNodes, k.Cost, k.Optimal)
	}
	if tr.Seal.Spans != "" {
		fmt.Fprintf(w, "spans: %s\n", tr.Seal.Spans)
	}
	fmt.Fprintln(w)
}

var timelineCSVHeader = []string{
	"job", "algorithm", "n", "power", "engine",
	"round", "active", "msgs", "bits", "maxLink", "phases",
}

func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// csvOnce is a CSV writer that emits the timeline header with the first row,
// so mixed text/check invocations and empty selections stay header-free.
type csvOnce struct {
	w       *csv.Writer
	enabled bool
	wrote   bool
}

func newCSVOnce(w io.Writer, enabled bool) *csvOnce {
	return &csvOnce{w: csv.NewWriter(w), enabled: enabled}
}

func (c *csvOnce) write(rec []string) {
	if !c.enabled {
		return
	}
	if !c.wrote {
		c.w.Write(timelineCSVHeader)
		c.wrote = true
	}
	c.w.Write(rec)
}

func (c *csvOnce) flush() {
	if c.enabled {
		c.w.Flush()
	}
}

func (tr *trace) renderCSV(cw *csvOnce) {
	if tr.Info == nil {
		return
	}
	ivs := tr.intervals()
	for _, ev := range tr.Rounds {
		cw.write([]string{
			strconv.Itoa(tr.Job.Index), tr.Job.Algorithm,
			strconv.Itoa(tr.Job.N), strconv.Itoa(tr.Job.Power), tr.Info.Engine,
			strconv.Itoa(ev.Round), strconv.Itoa(ev.Active),
			strconv.FormatInt(ev.Messages, 10), strconv.FormatInt(ev.Bits, 10),
			strconv.FormatInt(ev.MaxLink, 10), phasesAt(ivs, ev.Round),
		})
	}
}
