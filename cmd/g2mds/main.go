// Command g2mds runs the Theorem 28 randomized O(log Δ)-approximation for
// minimum dominating set on G² and compares it against the centralized
// greedy baseline (and the exact optimum on small inputs).
//
// Usage:
//
//	g2mds -gen gnp -n 48 -p 0.15
//	g2mds -gen udg -n 64 -p 0.25 -samples 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"powergraph"
)

func main() {
	gen := flag.String("gen", "gnp", "generator: gnp|udg|path|cycle|grid|star")
	n := flag.Int("n", 48, "vertex count")
	p := flag.Float64("p", 0.15, "edge probability (gnp) / radius (udg)")
	seed := flag.Int64("seed", 1, "random seed")
	samples := flag.Int("samples", 0, "estimator repetitions factor (×log n; 0 = default)")
	phases := flag.Int("phases", 0, "phase budget factor (0 = default)")
	exactCap := flag.Int("exactcap", 36, "compute exact ratio when n ≤ this")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *powergraph.Graph
	switch *gen {
	case "gnp":
		g = powergraph.ConnectedGNP(*n, *p, rng)
	case "udg":
		g = powergraph.ConnectedUnitDisk(*n, *p, rng)
	case "path":
		g = powergraph.Path(*n)
	case "cycle":
		g = powergraph.Cycle(*n)
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = powergraph.Grid(side, side)
	case "star":
		g = powergraph.Star(*n)
	default:
		fmt.Fprintf(os.Stderr, "g2mds: unknown generator %q\n", *gen)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	res, err := powergraph.MDSCongest(g, &powergraph.MDSOptions{
		Options:      powergraph.Options{Seed: *seed},
		SampleFactor: *samples,
		PhaseFactor:  *phases,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "g2mds:", err)
		os.Exit(1)
	}

	ok, witness := powergraph.IsSquareDominatingSet(g, res.Solution)
	fmt.Printf("rounds=%d messages=%d bits=%d bandwidth=%dbit\n",
		res.Stats.Rounds, res.Stats.Messages, res.Stats.TotalBits, res.Stats.Bandwidth)
	fmt.Printf("dominating set: size=%d fallback-joins=%d feasible=%v\n",
		res.Solution.Count(), res.FallbackJoins, ok)
	if !ok {
		fmt.Printf("UNDOMINATED vertex: %d\n", witness)
		os.Exit(1)
	}

	sq := g.Square()
	greedy := powergraph.GreedyMDS(sq)
	fmt.Printf("greedy baseline on G²: size=%d\n", greedy.Count())
	if g.N() <= *exactCap {
		opt := powergraph.Cost(sq, powergraph.ExactDS(sq))
		fmt.Printf("exact optimum=%d ratio=%s\n",
			opt, powergraph.RatioOf(int64(res.Solution.Count()), opt))
	}
}
