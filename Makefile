# Single entry points shared by CI (.github/workflows/ci.yml) and humans.

GO ?= go
OUT ?= bench-out

.PHONY: build vet test race bench sweep clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Go micro-benchmarks (bench_test.go and friends).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Full scenario sweep through the experiment harness; override SPEC to point
# at another matrix, e.g. `make sweep SPEC=specs/power-sweep.json`.
SPEC ?= specs/podc20-sweep.json
sweep:
	$(GO) run ./cmd/powerbench -spec $(SPEC) -out $(OUT)

clean:
	rm -rf $(OUT)
