# Single entry points shared by CI (.github/workflows/ci.yml) and humans.

GO ?= go
OUT ?= bench-out

.PHONY: build vet test race race-diff race-shard race-serve serve-smoke serve-load bench bench-engine bench-obs bench-step bench-kernel fuzz-kernel sweep sweep-scale sweep-power-smoke sweep-kernel sweep-sparsify sweep-mega sweep-mega-smoke trace-smoke sparsify-smoke docs-check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet docs-check
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detector pass over the engine differential and the step-vs-blocking
# equivalence tests only (small n, a few minutes) — the CI race job.
race-diff:
	$(GO) test -race -count=1 \
		-run 'TestEngineDifferentialAllAlgorithms|TestEngineAxisSweepIsDifferential|TestStep.*MatchesBlocking|TestStepPrimitivesMatchBlocking|TestRegistryRunsNativelyOnBatchEngine|TestSharded' \
		./internal/congest/... ./internal/core/ ./internal/harness/

# Race-detector pass over the shard barrier specifically: the sharded batch
# engine's worker pool under adversarial shard sizes (empty shards, one-node
# shards), plus the harness-level sharded determinism differential — the CI
# race-shard job.
race-shard:
	$(GO) test -race -count=1 \
		-run 'TestSharded|TestNegativeShardsRejected' \
		./internal/congest/ ./internal/harness/

# Race-detector pass over the serving layer: the churn property tests
# (incremental Gʳ maintenance byte-identical to full recomputes, engine and
# shard invariance on churned instances), the component-cached exact solver,
# the overlay/incremental-power graph layer, and harness cancellation — the
# CI serve-smoke job's second leg.
race-serve:
	$(GO) test -race -count=1 \
		-run 'TestChurn|TestIncremental|TestOverlay|TestRunLoadSmoke|TestSolveInstance|TestCancel|TestServer' \
		./internal/serve/ ./internal/graph/ ./internal/kernel/ ./internal/harness/ ./internal/congest/

# Serving-layer smoke: the full HTTP surface against golden responses
# (including the no-leaked-goroutines check), validation and NDJSON churn
# paths, and the load-generator accounting invariants.
serve-smoke:
	$(GO) test -count=1 -run 'TestServer|TestSolveCanceled|TestRunLoadSmoke|TestLoadLoadSpec' ./internal/serve/

# Sustained mixed-load benchmark against an in-process server (regenerates
# BENCH_serve.json: QPS plus per-endpoint p50/p95 under concurrent solve +
# churn traffic).
serve-load:
	$(GO) run ./cmd/powerserve -load specs/serve-load.json -out BENCH_serve.json

# Go micro-benchmarks (bench_test.go and friends).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Engine-mode comparison: goroutine vs batch vs native step programs on the
# simulator's hot loop (see internal/congest/bench_test.go).
bench-engine:
	$(GO) test -bench=BenchmarkEngineModes -benchmem -run='^$$' ./internal/congest/

# Observability overhead on the engine hot loop: nil tracer ("off") vs
# span-only vs full per-round accounting (see
# internal/congest/bench_obs_test.go). The "off" rows are directly comparable
# to bench-engine's handler rows — the disabled-tracer contract is <2% and
# zero added allocations.
bench-obs:
	$(GO) test -bench=BenchmarkObs -benchmem -run='^$$' ./internal/congest/

# Per-algorithm comparison of the batch engine's two execution paths:
# coroutine-adapted blocking reference vs native step program
# (see internal/core/step_bench_test.go).
bench-step:
	$(GO) test -bench=BenchmarkStepVsCoroutine -benchmem -run='^$$' ./internal/core/

# Kernelize-then-solve vs legacy raw exact on leader-shaped instances
# (squares of sparse graphs): solve time, kernel size after reductions, and
# whether the raw solver exhausts the stress budget.
bench-kernel:
	$(GO) test -bench='BenchmarkKernel' -benchmem -run='^$$' ./internal/kernel/

# Short fuzz pass over the kernel lift invariants (feasibility + LP lower
# bound on arbitrary graph encodings) — the CI smoke configuration.
fuzz-kernel:
	$(GO) test -run='^$$' -fuzz=FuzzKernelLiftFeasible -fuzztime=20s ./internal/kernel/

# Full scenario sweep through the experiment harness; override SPEC to point
# at another matrix, e.g. `make sweep SPEC=specs/power-sweep.json`.
SPEC ?= specs/podc20-sweep.json
sweep:
	$(GO) run ./cmd/powerbench -spec $(SPEC) -out $(OUT)

# Thousand-node engine-comparison sweep over all seven distributed
# algorithms (regenerates BENCH_scale.json's numbers; single worker so
# per-job wall clocks are uncontended).
sweep-scale:
	$(GO) run ./cmd/powerbench -spec specs/step-sweep.json -workers 1 -out $(OUT)

# CI gate for the (algorithm × power) matrix: a small distributed power
# sweep (n ≤ 200, r = 1…4, both engines) that fails on any job error or any
# solution that is not a feasible cover/dominating set of its Gʳ.
sweep-power-smoke:
	$(GO) run ./cmd/powerbench -spec specs/power-smoke.json -strict -quiet -out $(OUT)

# The kernelize-then-solve sweep (and its CI gate): randomized + weighted
# variants at n = 500…2000 with the kernel-exact leader solver and true
# optimum-checked ratios at every size (regenerates BENCH_kernel.json).
sweep-kernel:
	$(GO) run ./cmd/powerbench -spec specs/kernel-sweep.json -strict -quiet -out $(OUT)

# Sparsified-vs-legacy Phase-II gather comparison at r ∈ {3, 4},
# n = 500…2000 (regenerates BENCH_sparsify.json): every cell runs twice on
# identical instances and seeds — once through the StepSparsify certificate
# gather, once through the legacy all-incident-edges near flood — so the
# messages / maxRoundMessages columns are a controlled measurement of the
# sparsifier's win.
sweep-sparsify:
	$(GO) run ./cmd/powerbench -spec specs/sparsify-sweep.json -strict -quiet -out $(OUT)

# CI gate for the sparsified gather: the sparsify matrix at smoke sizes
# (r ∈ {3, 4}, both gather modes on identical instances) under -strict,
# with per-job traces validated by powertrace — any infeasible Gʳ solution,
# gather divergence, or malformed phase2-sparsify span fails the run.
sparsify-smoke:
	$(GO) run ./cmd/powerbench -spec specs/sparsify-smoke.json -strict -quiet \
		-out $(OUT) -trace $(OUT)/sparsify-traces
	$(GO) run ./cmd/powertrace -check $(OUT)/sparsify-traces

# Large-n sweeps over the sharded batch engine (regenerate BENCH_mega.json
# and BENCH_mega-1m.json): MDS end to end plus the MVC Lemma-6 shortcut
# rows on a sparse 100k instance with a shard-count axis, then the 300k
# and million-node shortcut cells. Expect about an hour on one core (the
# MDS phase budget is Θ(log²n·logΔ) phases of Θ(log n) rounds each; see
# ARCHITECTURE.md on when sharding pays).
sweep-mega:
	$(GO) run ./cmd/powerbench -spec specs/mega-sweep.json -workers 1 -out $(OUT)
	$(GO) run ./cmd/powerbench -spec specs/mega-1m.json -workers 1 -out $(OUT)

# CI gate for the mega path: the million-node sharded-engine smoke
# (fixed-size worker pool, sequential-identical output at n = 10⁶) plus one
# seeded 100k-vertex MDS cell asserted against the golden summary (rounds,
# messages, solution size) pinned in internal/harness/mega_test.go.
sweep-mega-smoke:
	MEGA_SMOKE=1 $(GO) test -count=1 -timeout 45m \
		-run 'TestShardedMillionNodes|TestMegaGoldenSummary' \
		./internal/congest/ ./internal/harness/

# Tracing gate: the power-smoke matrix with per-job trace files on, then
# powertrace validating every file end to end (typed records, sealed files,
# monotone-complete rounds, closed spans, totals matching run-end).
trace-smoke:
	$(GO) run ./cmd/powerbench -spec specs/power-smoke.json -strict -quiet \
		-out $(OUT) -trace $(OUT)/traces
	$(GO) run ./cmd/powertrace -check $(OUT)/traces

# Documentation gate: every package under internal/ must carry a package
# comment (a "// Package <name> ..." line somewhere in the package).
docs-check:
	@fail=0; \
	for d in internal/*/ internal/congest/primitives/; do \
		p=$$(basename $$d); \
		if ! grep -qs "^// Package $$p" $$d*.go; then \
			echo "docs-check: package $$p ($$d) has no package comment"; fail=1; \
		fi; \
	done; \
	[ $$fail -eq 0 ] && echo "docs-check: all internal packages documented"; \
	exit $$fail

clean:
	rm -rf $(OUT)
